// Command shelfsim runs one simulation and prints a summary: pick a
// configuration preset, a set of kernels (one per thread), an instruction
// budget and a steering policy. The flags assemble a shelfsim.Request —
// the same description shelfd accepts over HTTP — so any CLI invocation
// can be replayed against a server verbatim.
//
// Examples:
//
//	shelfsim -config shelf64-opt -kernels stream,ptrchase,branchy,matblock -insts 200000
//	shelfsim -config base64 -threads 1 -kernels ptrchase -insts 100000
//	shelfsim -config base64 -kernels stream,branchy -insts 100000 -json
//	shelfsim -config shelf64-opt -asm testdata/asm/dotprod.s -insts 100000
//	shelfsim -list
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"shelfsim"
	"shelfsim/internal/obs"
)

func main() {
	var (
		configName = flag.String("config", "shelf64-opt", "configuration preset: base64, base128, shelf64-cons, shelf64-opt, coarse64")
		kernelsCSV = flag.String("kernels", "", "comma-separated kernel names, one per thread")
		asmCSV     = flag.String("asm", "", "comma-separated assembly program files (.s), one per thread, instead of kernels")
		threads    = flag.Int("threads", 0, "thread count (default: number of kernels)")
		insts      = flag.Int64("insts", 200_000, "retired instructions per thread")
		steerName  = flag.String("steer", "", "override steering: all-iq, all-shelf, oracle, practical, coarse")
		cores      = flag.Int("cores", 0, "simulate an N-core chip (kernels list -threads entries per core)")
		allocName  = flag.String("alloc", "", "chip thread-to-core allocation: round-robin, icount, shelf-pressure")
		chipEpoch  = flag.Int64("chip-epoch", 0, "chip allocation-epoch length in cycles (default 4096)")
		list       = flag.Bool("list", false, "list available kernels and exit")
		jsonOut    = flag.Bool("json", false, "print the versioned JSON report instead of the text summary")
		obsOut     = flag.String("obs", "", "collect per-core telemetry and write it to this file (JSON, or CSV with a .csv extension)")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProfiles, err := obs.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fatalf("%v", err)
	}

	if *list {
		for _, k := range shelfsim.Kernels() {
			fmt.Println(k)
		}
		return
	}

	req := shelfsim.Request{
		Preset:  *configName,
		Threads: *threads,
		Insts:   *insts,
	}
	if files := splitCSV(*asmCSV); len(files) > 0 {
		if *kernelsCSV != "" {
			fatalf("-asm and -kernels are mutually exclusive (the workload is a union)")
		}
		for _, file := range files {
			src, err := os.ReadFile(file)
			if err != nil {
				fatalf("reading program: %v", err)
			}
			req.Programs = append(req.Programs, string(src))
		}
	} else {
		names := splitCSV(*kernelsCSV)
		if len(names) == 0 {
			names = []string{"stream", "ptrchase", "branchy", "matblock"}
		}
		req.Kernels = names
	}
	ov := shelfsim.Overrides{}
	if *steerName != "" {
		ov.Steer = steerName
	}
	if *cores > 0 {
		ov.Cores = cores
	}
	if *allocName != "" {
		ov.Alloc = allocName
	}
	if *chipEpoch > 0 {
		ov.ChipEpoch = chipEpoch
	}
	if *obsOut != "" {
		telemetry := true
		ov.Telemetry = &telemetry
	}
	if ov != (shelfsim.Overrides{}) {
		req.Overrides = &ov
	}

	// Resolve up front: configuration validation failures surface as typed
	// field errors before any simulation runs.
	rv, err := req.Resolve()
	if err != nil {
		fatalf("%v", err)
	}

	res, err := shelfsim.Run(context.Background(), req)
	if err != nil {
		fatalf("%v", err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(shelfsim.NewReport(rv, res)); err != nil {
			fatalf("encoding report: %v", err)
		}
	} else {
		printResult(res)
	}
	if *obsOut != "" {
		if err := obs.WriteFile(*obsOut, res.Obs); err != nil {
			fatalf("writing telemetry: %v", err)
		}
	}
	if err := stopProfiles(); err != nil {
		fatalf("%v", err)
	}
}

func printResult(res shelfsim.Result) {
	s := res.Stats
	fmt.Printf("config      %s\n", res.Config)
	fmt.Printf("cycles      %d\n", res.Cycles)
	fmt.Printf("retired     %d  (IPC %.3f)\n", s.Retired, s.IPC())
	fmt.Printf("issues      %d  (shelf %d = %.1f%%)\n", s.Issues, s.ShelfIssues,
		pct(s.ShelfIssues, s.Issues))
	fmt.Printf("squashes    %d  (filtered writebacks %d)\n", s.Squashes, s.SquashedWritebacksFiltered)
	fmt.Printf("occupancy   rob %.1f  iq %.1f  shelf %.1f  lq %.1f  sq %.1f  prf %.1f\n",
		s.AvgOccupancy(s.ROBOccupancy), s.AvgOccupancy(s.IQOccupancy),
		s.AvgOccupancy(s.ShelfOccupancy), s.AvgOccupancy(s.LQOccupancy),
		s.AvgOccupancy(s.SQOccupancy), s.AvgOccupancy(s.PRFOccupancy))
	fmt.Printf("caches      L1D %.1f%% miss  L2 %.1f%% miss\n",
		100*res.L1D.MissRate(), 100*res.L2.MissRate())
	fmt.Println()
	fmt.Printf("%-12s %10s %8s %8s %8s %8s %8s\n",
		"thread", "retired", "CPI", "inseq%", "shelf%", "squash", "viol")
	for i, t := range res.Threads {
		fmt.Printf("%d:%-10s %10d %8.3f %7.1f%% %7.1f%% %8d %8d\n",
			i, t.Workload, t.Retired, t.CPI, 100*t.InSeqFraction, 100*t.ShelfFraction,
			t.Squashes, t.MemViolations)
	}
}

func pct(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func splitCSV(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "shelfsim: "+format+"\n", args...)
	os.Exit(1)
}
