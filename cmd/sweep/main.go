// Command sweep runs parameter sweeps over the shelf design space and
// emits CSV (one row per parameter value), for plotting design-space
// curves: shelf capacity, ROB size, IQ size, RCT width, PLT size, and
// coarse-switching interval.
//
//	sweep -param shelf -values 0,16,32,64,128 -mixes 8 -insts 4000
//	sweep -param rob -values 32,64,96,128
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"shelfsim/internal/config"
	"shelfsim/internal/harness"
	"shelfsim/internal/metrics"
)

func main() {
	var (
		param  = flag.String("param", "shelf", "shelf, rob, iq, rctbits, plt, interval")
		values = flag.String("values", "", "comma-separated parameter values")
		mixes  = flag.Int("mixes", 8, "number of balanced-random mixes")
		insts  = flag.Int64("insts", 4000, "measured instructions per thread")
		thread = flag.Int("threads", 4, "SMT thread count")
	)
	flag.Parse()

	vals, err := parseValues(*values, *param)
	if err != nil {
		fatalf("%v", err)
	}

	h := harness.New(*insts, *mixes)
	base := config.Base64(*thread)

	fmt.Println("param,value,geomean_stp,geomean_stp_improvement,geomean_ipc,shelved_frac")
	for _, v := range vals {
		cfg, err := configure(*param, v, *thread)
		if err != nil {
			fatalf("%v", err)
		}
		var stps, baseSTPs, ipcs []float64
		var shelfIssues, issues int64
		for _, mix := range h.Mixes(*thread) {
			res, err := h.Run(cfg, mix)
			if err != nil {
				fatalf("%s=%d on %s: %v", *param, v, mix.Name(), err)
			}
			stp, err := h.STP(mix, res)
			if err != nil {
				fatalf("%v", err)
			}
			rb, err := h.Run(base, mix)
			if err != nil {
				fatalf("%v", err)
			}
			bstp, err := h.STP(mix, rb)
			if err != nil {
				fatalf("%v", err)
			}
			stps = append(stps, stp)
			baseSTPs = append(baseSTPs, stp/bstp)
			ipcs = append(ipcs, res.Stats.IPC())
			shelfIssues += res.Stats.ShelfIssues
			issues += res.Stats.Issues
		}
		gmSTP, _ := metrics.GeoMean(stps)
		gmImp, _ := metrics.GeoMean(baseSTPs)
		gmIPC, _ := metrics.GeoMean(ipcs)
		shelved := 0.0
		if issues > 0 {
			shelved = float64(shelfIssues) / float64(issues)
		}
		fmt.Printf("%s,%d,%.4f,%.4f,%.4f,%.4f\n", *param, v, gmSTP, gmImp-1, gmIPC, shelved)
	}
}

// configure builds the swept configuration for one parameter value.
func configure(param string, v int64, threads int) (config.Config, error) {
	cfg := config.Shelf64(threads, true)
	switch param {
	case "shelf":
		cfg.Shelf = int(v)
		if v == 0 {
			cfg.Steer = config.SteerAllIQ
		}
	case "rob":
		cfg.ROB = int(v)
		if cfg.PRF < cfg.ROB {
			cfg.PRF = cfg.ROB + 64
		}
	case "iq":
		cfg.IQ = int(v)
	case "rctbits":
		cfg.RCTBits = uint(v)
	case "plt":
		cfg.PLTLoads = int(v)
	case "interval":
		cfg = config.Coarse64(threads, v)
	default:
		return cfg, fmt.Errorf("unknown parameter %q", param)
	}
	cfg.Name = fmt.Sprintf("%s-%d", param, v)
	if err := cfg.Validate(); err != nil {
		return cfg, fmt.Errorf("%s=%d: %w", param, v, err)
	}
	return cfg, nil
}

// parseValues parses the -values list, with per-parameter defaults.
func parseValues(s, param string) ([]int64, error) {
	if s == "" {
		defaults := map[string][]int64{
			"shelf":    {0, 16, 32, 64, 128},
			"rob":      {32, 64, 96, 128},
			"iq":       {16, 32, 48, 64},
			"rctbits":  {3, 4, 5, 6, 8},
			"plt":      {0, 2, 4, 8},
			"interval": {100, 1000, 10000},
		}
		if vals, ok := defaults[param]; ok {
			return vals, nil
		}
		return nil, fmt.Errorf("no default values for %q", param)
	}
	parts := strings.Split(s, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sweep: "+format+"\n", args...)
	os.Exit(1)
}
