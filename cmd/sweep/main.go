// Command sweep runs parameter sweeps over the shelf design space and
// emits CSV (one row per parameter value), for plotting design-space
// curves: shelf capacity, ROB size, IQ size, RCT width, PLT size, and
// coarse-switching interval.
//
//	sweep -param shelf -values 0,16,32,64,128 -mixes 8 -insts 4000
//	sweep -param rob -values 32,64,96,128
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"shelfsim/internal/config"
	"shelfsim/internal/harness"
	"shelfsim/internal/metrics"
	"shelfsim/internal/obs"
	"shelfsim/internal/runner"
)

func main() {
	var (
		param   = flag.String("param", "shelf", "shelf, rob, iq, rctbits, plt, interval")
		values  = flag.String("values", "", "comma-separated parameter values")
		mixes   = flag.Int("mixes", 8, "number of balanced-random mixes")
		insts   = flag.Int64("insts", 4000, "measured instructions per thread")
		thread  = flag.Int("threads", 4, "SMT thread count")
		workers = flag.Int("workers", 0, "simulation worker-pool size (0 = GOMAXPROCS)")
		check   = flag.Bool("check", false, "enable the per-cycle microarchitectural invariant checker")
		obsOut  = flag.String("obs", "", "collect per-core telemetry and write the merged aggregate to this file (JSON, or CSV with a .csv extension)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	vals, err := parseValues(*values, *param)
	if err != nil {
		fatalf("%v", err)
	}

	stopProfiles, err := obs.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fatalf("%v", err)
	}

	h := harness.New(*insts, *mixes)
	h.Runner.Workers = *workers
	h.CheckInvariants = *check
	h.Telemetry = *obsOut != ""
	base := config.Base64(*thread)

	fmt.Println("param,value,geomean_stp,geomean_stp_improvement,geomean_ipc,shelved_frac")
	for _, v := range vals {
		cfg, err := configure(*param, v, *thread)
		if err != nil {
			fatalf("%v", err)
		}
		// Fill the cache for this point in parallel; per-mix failures are
		// recorded in the manifest and the point degrades to fewer mixes.
		h.Prewarm(context.Background(), []config.Config{cfg, base}, h.Mixes(*thread))

		var stps, baseSTPs, ipcs []float64
		var shelfIssues, issues int64
		for _, mix := range h.Mixes(*thread) {
			res, err := h.Run(cfg, mix)
			if skipMix(err, *param, v, mix.Name()) {
				continue
			}
			stp, err := h.STP(mix, res)
			if skipMix(err, *param, v, mix.Name()) {
				continue
			}
			rb, err := h.Run(base, mix)
			if skipMix(err, *param, v, mix.Name()) {
				continue
			}
			bstp, err := h.STP(mix, rb)
			if skipMix(err, *param, v, mix.Name()) {
				continue
			}
			stps = append(stps, stp)
			baseSTPs = append(baseSTPs, stp/bstp)
			ipcs = append(ipcs, res.Stats.IPC())
			shelfIssues += res.Stats.ShelfIssues
			issues += res.Stats.Issues
		}
		if len(stps) == 0 {
			fmt.Fprintf(os.Stderr, "sweep: %s=%d: every mix failed, omitting row\n", *param, v)
			continue
		}
		gmSTP, _ := metrics.GeoMean(stps)
		gmImp, _ := metrics.GeoMean(baseSTPs)
		gmIPC, _ := metrics.GeoMean(ipcs)
		shelved := 0.0
		if issues > 0 {
			shelved = float64(shelfIssues) / float64(issues)
		}
		fmt.Printf("%s,%d,%.4f,%.4f,%.4f,%.4f\n", *param, v, gmSTP, gmImp-1, gmIPC, shelved)
	}

	if failures := h.Failures(); len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "sweep: %d supervised run(s) failed; manifest:\n", len(failures))
		m := runner.NewManifest(h.Runs()+len(failures), failures)
		if err := m.WriteJSON(os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "sweep: writing manifest: %v\n", err)
		}
	}
	if *obsOut != "" {
		if err := obs.WriteFile(*obsOut, h.MergedTelemetry()); err != nil {
			fatalf("writing telemetry: %v", err)
		}
	}
	if err := stopProfiles(); err != nil {
		fatalf("%v", err)
	}
}

// skipMix reports whether err is a recorded supervised failure (skip the
// mix, warn) as opposed to nil (false) or a hard error (fatal).
func skipMix(err error, param string, v int64, mix string) bool {
	if err == nil {
		return false
	}
	if harness.Skippable(err) {
		fmt.Fprintf(os.Stderr, "sweep: skipping %s=%d on %s: %v\n", param, v, mix, err)
		return true
	}
	fatalf("%s=%d on %s: %v", param, v, mix, err)
	return false
}

// configure builds the swept configuration for one parameter value.
func configure(param string, v int64, threads int) (config.Config, error) {
	cfg := config.Shelf64(threads, true)
	switch param {
	case "shelf":
		cfg.Shelf = int(v)
		if v == 0 {
			cfg.Steer = config.SteerAllIQ
		}
	case "rob":
		cfg.ROB = int(v)
		if cfg.PRF < cfg.ROB {
			cfg.PRF = cfg.ROB + 64
		}
	case "iq":
		cfg.IQ = int(v)
	case "rctbits":
		cfg.RCTBits = uint(v)
	case "plt":
		cfg.PLTLoads = int(v)
	case "interval":
		cfg = config.Coarse64(threads, v)
	default:
		return cfg, fmt.Errorf("unknown parameter %q", param)
	}
	cfg.Name = fmt.Sprintf("%s-%d", param, v)
	if err := cfg.Validate(); err != nil {
		return cfg, fmt.Errorf("%s=%d: %w", param, v, err)
	}
	return cfg, nil
}

// parseValues parses the -values list, with per-parameter defaults.
func parseValues(s, param string) ([]int64, error) {
	if s == "" {
		defaults := map[string][]int64{
			"shelf":    {0, 16, 32, 64, 128},
			"rob":      {32, 64, 96, 128},
			"iq":       {16, 32, 48, 64},
			"rctbits":  {3, 4, 5, 6, 8},
			"plt":      {0, 2, 4, 8},
			"interval": {100, 1000, 10000},
		}
		if vals, ok := defaults[param]; ok {
			return vals, nil
		}
		return nil, fmt.Errorf("no default values for %q", param)
	}
	parts := strings.Split(s, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sweep: "+format+"\n", args...)
	os.Exit(1)
}
