// Command shelfload is the in-repo load harness for shelfd: it drives a
// running server through the typed client with a deterministic mixed
// hot/cold request sweep — a small hot set of requests submitted over and
// over (exercising in-flight dedup and the persistent store) interleaved
// with cold, never-repeated requests (forcing fresh simulations) — and
// publishes the serving-layer benchmark document consumed by CI's
// BENCH_serve.json gate: p50/p99 latency, throughput, store hit rate and
// dedup hit rate, measured as /metrics deltas so a warm server or a CI
// rerun does not skew the rates.
//
//	shelfload -addr 127.0.0.1:8080 -n 200 -conc 8 -hot 0.8 -out BENCH_serve.json
//
// Every pair of identical requests is also checked for result-fingerprint
// identity (the determinism contract must survive load). -warmup-frac
// excludes the schedule's cold leading fraction from the latency
// percentiles (those requests still run and count for errors, determinism
// and hit rates), and -differential
// re-runs one hot request in-process and requires the served fingerprint
// to match — the restart differential when pointed at a warm store.
// -min-store-hits and -min-store-hit-rate turn the run into a smoke gate.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"shelfsim"
	"shelfsim/client"
)

// result is one completed request's measurement.
type result struct {
	insts       int64
	hot         bool
	warmup      bool
	latency     time.Duration
	fingerprint string
	err         error
}

// Bench is the BENCH_serve.json document.
type Bench struct {
	Requests    int     `json:"requests"`
	Concurrency int     `json:"concurrency"`
	HotFraction float64 `json:"hot_fraction"`
	HotSet      int     `json:"hot_set"`
	Insts       int64   `json:"insts"`
	// WarmupFrac is the leading fraction of the schedule excluded from the
	// latency percentiles; Measured is the request count they cover.
	WarmupFrac float64 `json:"warmup_frac,omitempty"`
	Measured   int     `json:"measured"`

	WallMs        float64 `json:"wall_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	MaxMs         float64 `json:"max_ms"`

	StoreHits    int64   `json:"store_hits"`
	StoreHitRate float64 `json:"store_hit_rate"`
	DedupHits    int64   `json:"dedup_hits"`
	DedupHitRate float64 `json:"dedup_hit_rate"`
	Executed     int64   `json:"executed"`
	Errors       int     `json:"errors"`
}

func main() {
	var (
		addr    = flag.String("addr", "", "shelfd address (host:port, required)")
		n       = flag.Int("n", 200, "total requests")
		conc    = flag.Int("conc", 8, "concurrent clients")
		hotFrac = flag.Float64("hot", 0.8, "fraction of requests drawn from the hot set")
		hotSet  = flag.Int("hotset", 4, "distinct requests in the hot set")
		insts   = flag.Int64("insts", 2000, "measured instructions per request (hot/cold windows derive from it)")
		preset  = flag.String("preset", "base64", "configuration preset for every request")
		kernel  = flag.String("kernel", "stream", "kernel for every request (single-thread workloads)")
		seed    = flag.Int64("seed", 1, "schedule RNG seed")
		out     = flag.String("out", "", "write the benchmark JSON here (default stdout only)")
		timeout = flag.Duration("timeout", 5*time.Minute, "whole-run deadline")
		diff    = flag.Bool("differential", false, "re-run one hot request in-process and require fingerprint identity with the served result")
		minHits  = flag.Int64("min-store-hits", -1, "fail unless the run produced at least this many store hits (-1 disables)")
		minRate  = flag.Float64("min-store-hit-rate", -1, "fail unless the store hit rate reaches this (-1 disables)")
		warmFrac = flag.Float64("warmup-frac", 0, "exclude this leading fraction of the schedule from the latency percentiles (cold server ramp-up; the requests still count for errors and hit rates)")
	)
	flag.Parse()
	if *addr == "" {
		log.Fatal("shelfload: -addr is required")
	}
	if *hotSet < 1 || *n < 1 || *conc < 1 {
		log.Fatal("shelfload: -n, -conc and -hotset must be positive")
	}
	if *warmFrac < 0 || *warmFrac >= 1 {
		log.Fatal("shelfload: -warmup-frac must be in [0, 1)")
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	c := client.New("http://" + *addr)

	// The deterministic schedule: request i is hot with probability
	// -hot (drawn from -hotset distinct windows) and otherwise a cold,
	// never-repeated window. Windows, not workloads, vary: insts is part
	// of the cache key, so distinct windows are distinct jobs.
	rng := rand.New(rand.NewSource(*seed))
	type item struct {
		req    shelfsim.Request
		hot    bool
		warmup bool
	}
	// The leading -warmup-frac of the schedule is the measurement warmup:
	// those requests run (and count for errors, determinism and hit rates)
	// but their latencies — dominated by cold store, cold dedup table and
	// scheduler ramp-up — stay out of the percentiles.
	warmupCount := int(*warmFrac * float64(*n))
	schedule := make([]item, *n)
	for i := range schedule {
		req := shelfsim.Request{Preset: *preset, Kernels: []string{*kernel}}
		if rng.Float64() < *hotFrac {
			req.Insts = *insts + int64(rng.Intn(*hotSet))
			schedule[i] = item{req: req, hot: true}
		} else {
			req.Insts = *insts + 10_000 + int64(i)
			schedule[i] = item{req: req, hot: false}
		}
		schedule[i].warmup = i < warmupCount
	}

	before, err := c.Metrics(ctx)
	if err != nil {
		log.Fatalf("shelfload: reading /metrics before the run: %v", err)
	}

	// Drive the schedule through a bounded worker pool; 429s ride the
	// retry policy instead of failing the run.
	work := make(chan item)
	results := make([]result, 0, *n)
	var mu sync.Mutex
	var wg sync.WaitGroup
	startAll := time.Now()
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			policy := client.NewRetryPolicy()
			for it := range work {
				start := time.Now()
				rep, err := policy.Run(ctx, c, it.req)
				r := result{insts: it.req.Insts, hot: it.hot, warmup: it.warmup, latency: time.Since(start), err: err}
				if err == nil {
					r.fingerprint = rep.ResultFingerprint
				}
				mu.Lock()
				results = append(results, r)
				mu.Unlock()
			}
		}()
	}
	for _, it := range schedule {
		work <- it
	}
	close(work)
	wg.Wait()
	wall := time.Since(startAll)

	after, err := c.Metrics(ctx)
	if err != nil {
		log.Fatalf("shelfload: reading /metrics after the run: %v", err)
	}

	// Determinism under load: identical requests must fingerprint
	// identically, whether they were simulated, deduplicated or served
	// from the store.
	fps := make(map[int64]string)
	errs := 0
	for _, r := range results {
		if r.err != nil {
			errs++
			log.Printf("shelfload: request insts=%d failed: %v", r.insts, r.err)
			continue
		}
		if prev, ok := fps[r.insts]; ok && prev != r.fingerprint {
			log.Fatalf("shelfload: request insts=%d fingerprint diverged: %s vs %s", r.insts, prev, r.fingerprint)
		}
		fps[r.insts] = r.fingerprint
	}

	lat := make([]time.Duration, 0, len(results))
	succeeded := 0
	for _, r := range results {
		if r.err != nil {
			continue
		}
		succeeded++
		if !r.warmup {
			lat = append(lat, r.latency)
		}
	}
	if succeeded == 0 {
		log.Fatal("shelfload: no request succeeded")
	}
	if len(lat) == 0 {
		log.Fatal("shelfload: -warmup-frac excluded every successful request from measurement")
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(lat)-1))
		return float64(lat[idx].Microseconds()) / 1000
	}

	dc := after.Counters
	bc := before.Counters
	served := dc.Completed - bc.Completed
	submitted := dc.Submitted - bc.Submitted
	bench := Bench{
		Requests:    *n,
		Concurrency: *conc,
		HotFraction: *hotFrac,
		HotSet:      *hotSet,
		Insts:       *insts,
		WarmupFrac:  *warmFrac,
		Measured:    len(lat),

		WallMs:        float64(wall.Microseconds()) / 1000,
		ThroughputRPS: float64(succeeded) / wall.Seconds(),
		P50Ms:         pct(0.50),
		P99Ms:         pct(0.99),
		MaxMs:         float64(lat[len(lat)-1].Microseconds()) / 1000,

		StoreHits: dc.StoreHits - bc.StoreHits,
		DedupHits: dc.DedupHits - bc.DedupHits,
		Executed:  dc.Executed - bc.Executed,
		Errors:    errs,
	}
	if served > 0 {
		bench.StoreHitRate = float64(bench.StoreHits) / float64(served)
	}
	if submitted > 0 {
		bench.DedupHitRate = float64(bench.DedupHits) / float64(submitted)
	}

	doc, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		log.Fatalf("shelfload: encoding benchmark: %v", err)
	}
	fmt.Println(string(doc))
	if *out != "" {
		if err := os.WriteFile(*out, append(doc, '\n'), 0o644); err != nil {
			log.Fatalf("shelfload: writing %s: %v", *out, err)
		}
	}

	if *diff {
		// The served-vs-in-process differential on one hot request: when
		// the server answered from a warm store, this proves a restart
		// lost no determinism.
		req := shelfsim.Request{Preset: *preset, Kernels: []string{*kernel}, Insts: *insts}
		local, err := shelfsim.RunReport(ctx, req)
		if err != nil {
			log.Fatalf("shelfload: in-process differential run: %v", err)
		}
		servedFP, ok := fps[req.Insts]
		if !ok {
			// The schedule may not have drawn hot window 0; fetch it now.
			rep, err := c.Run(ctx, req)
			if err != nil {
				log.Fatalf("shelfload: fetching differential request: %v", err)
			}
			servedFP = rep.ResultFingerprint
		}
		if servedFP != local.ResultFingerprint {
			log.Fatalf("shelfload: differential failed: served fingerprint %s != in-process %s",
				servedFP, local.ResultFingerprint)
		}
		log.Printf("shelfload: differential ok (%s)", servedFP)
	}

	if errs > 0 {
		log.Fatalf("shelfload: %d requests failed", errs)
	}
	if *minHits >= 0 && bench.StoreHits < *minHits {
		log.Fatalf("shelfload: %d store hits, want >= %d", bench.StoreHits, *minHits)
	}
	if *minRate >= 0 && bench.StoreHitRate < *minRate {
		log.Fatalf("shelfload: store hit rate %.3f, want >= %.3f", bench.StoreHitRate, *minRate)
	}
}
