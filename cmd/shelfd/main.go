// Command shelfd serves shelfsim simulations over HTTP/JSON: POST a
// shelfsim.Request to /v1/run (or a batch to /v1/sweep for an NDJSON
// stream), and read /healthz and /metrics for liveness and the merged
// observability snapshot. Jobs are routed by cache-key hash onto
// single-writer execution shards (one owning goroutine and one bounded
// ring inbox per shard) in front of the supervised runner; identical
// in-flight requests share one execution; a full inbox answers 429 with
// Retry-After.
//
//	shelfd -addr :8080 -store /var/lib/shelfd
//	curl -s localhost:8080/v1/run -d '{"preset":"shelf64-opt","kernels":["stream","ptrchase","branchy","matblock"],"insts":100000}'
//
// With -store, every completed report is persisted content-addressed
// under its cache key and repeat requests — across restarts included —
// are served from disk without re-simulating; the cumulative /metrics
// counters also survive restarts via the store's meta document.
//
// On SIGTERM/SIGINT shelfd drains gracefully: admitted jobs finish and are
// answered, new submissions get 429, and the process exits 0 once idle (or
// non-zero if the drain deadline expires with jobs still running).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"shelfsim/internal/serve"
	"shelfsim/internal/store"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		addrFile  = flag.String("addrfile", "", "write the bound address to this file once listening (CI/scripts)")
		storeDir  = flag.String("store", "", "persistent result-store directory (empty: results die with the process)")
		shards    = flag.Int("shards", 0, "single-writer execution shards, i.e. concurrent simulations (default: GOMAXPROCS)")
		queue     = flag.Int("queue", 64, "per-shard ring-inbox depth; a full inbox answers 429")
		timeout   = flag.Duration("timeout", 2*time.Minute, "per-job wall-clock timeout")
		drainWait = flag.Duration("drain", 5*time.Minute, "graceful-drain deadline after SIGTERM")
	)
	flag.Parse()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("shelfd: %v", err)
	}
	log.Printf("shelfd: listening on %s", ln.Addr())
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatalf("shelfd: writing addrfile: %v", err)
		}
	}

	opts := serve.Options{
		Shards:     *shards,
		QueueDepth: *queue,
		JobTimeout: *timeout,
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			log.Fatalf("shelfd: opening store: %v", err)
		}
		stats := st.Stats()
		log.Printf("shelfd: store %s: %d entries warm (%d skipped)",
			*storeDir, stats.WarmEntries, stats.SkippedOnOpen)
		opts.Store = st
	}
	srv := serve.New(opts)
	httpSrv := &http.Server{Handler: srv}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)

	select {
	case s := <-sig:
		log.Printf("shelfd: %v: draining (deadline %v)", s, *drainWait)
	case err := <-serveErr:
		log.Fatalf("shelfd: serve: %v", err)
	}

	// Drain order matters: stop admission first (submissions now get 429
	// through the still-open listener), finish the admitted jobs so their
	// responses go out, then close the HTTP server, which waits for those
	// responses to be written.
	srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	drainErr := srv.Wait(ctx)
	if err := httpSrv.Shutdown(ctx); err != nil && drainErr == nil {
		drainErr = fmt.Errorf("http shutdown: %w", err)
	}
	if err := srv.Close(); err != nil && drainErr == nil {
		drainErr = err
	}
	if drainErr != nil {
		log.Fatalf("shelfd: %v", drainErr)
	}
	log.Printf("shelfd: drained, exiting")
}
