// Command experiments regenerates every table and figure of the paper's
// evaluation (Figures 1, 2, 10-14; Tables I, II) on the simulated core.
//
//	experiments -exp all -insts 8000 -mixes 28
//	experiments -exp fig10 -insts 20000
//
// Each experiment prints the same rows/series the paper reports; absolute
// numbers differ (synthetic workloads on a from-scratch simulator) but the
// shapes — who wins, by roughly what factor — are the reproduction target.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"shelfsim/internal/config"
	"shelfsim/internal/harness"
	"shelfsim/internal/metrics"
	"shelfsim/internal/obs"
	"shelfsim/internal/runner"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: fig1,fig2,table1,fig10,fig11,fig12,fig13,table2,fig14,all")
		insts    = flag.Int64("insts", 8000, "measured instructions per thread")
		mixes    = flag.Int("mixes", 28, "number of balanced-random mixes (max 28)")
		thread   = flag.Int("threads", 4, "thread count for the main experiments")
		workers  = flag.Int("workers", 0, "simulation worker-pool size (0 = GOMAXPROCS)")
		check    = flag.Bool("check", false, "enable the per-cycle microarchitectural invariant checker")
		faultCfg = flag.String("faultconfig", "", "inject an invariant violation into runs of this config name (test hook)")
		faultMix = flag.String("faultmix", "", "confine -faultconfig's fault to this mix name (empty = every mix)")
		faultCyc = flag.Int64("faultcycle", 1000, "cycle at which -faultconfig's fault fires")
		faultKnd = flag.String("faultkind", "window", "what -faultconfig corrupts: window, store-drop or wakeup-tag")
		obsOut   = flag.String("obs", "", "collect per-core telemetry and write the merged aggregate to this file (JSON, or CSV with a .csv extension)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProfiles, err := obs.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}

	h := harness.New(*insts, *mixes)
	h.Runner.Workers = *workers
	h.CheckInvariants = *check
	h.Telemetry = *obsOut != ""
	h.FaultConfig = *faultCfg
	h.FaultMix = *faultMix
	h.FaultCycle = *faultCyc
	if *faultCfg != "" {
		kind, err := config.FaultKindByName(*faultKnd)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		h.FaultKind = kind
	}

	// The four main configurations dominate the figures; validate them up
	// front so a bad -threads value fails with a typed field error instead
	// of a mid-experiment panic.
	mainConfigs := []config.Config{
		config.Base64(*thread),
		config.Shelf64(*thread, false),
		config.Shelf64(*thread, true),
		config.Base128(*thread),
	}
	for i := range mainConfigs {
		if err := mainConfigs[i].Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: config %s: %v\n", mainConfigs[i].Name, err)
			os.Exit(1)
		}
	}

	// Warm the run cache in parallel on the worker pool: supervised
	// failures here are recorded rather than fatal.
	h.Prewarm(context.Background(), mainConfigs, h.Mixes(*thread))

	// An experiment error no longer aborts the program: the remaining
	// experiments still run and the failure manifest is emitted at the end.
	hardErrors := 0
	run := func(name string, f func(*harness.Harness, int) error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("==== %s ====\n", name)
		if err := f(h, *thread); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			hardErrors++
		}
		fmt.Println()
	}

	run("table1", table1)
	run("fig1", fig1)
	run("fig2", fig2)
	run("fig10", fig10)
	run("fig11", fig11)
	run("fig12", fig12)
	run("fig13", fig13)
	run("table2", table2)
	run("fig14", fig14)

	if failures := h.Failures(); len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d supervised run(s) failed; manifest:\n", len(failures))
		m := runner.NewManifest(h.Runs()+len(failures), failures)
		if err := m.WriteJSON(os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: writing manifest: %v\n", err)
		}
	}
	if *obsOut != "" {
		if err := obs.WriteFile(*obsOut, h.MergedTelemetry()); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: writing telemetry: %v\n", err)
			hardErrors++
		}
	}
	if err := stopProfiles(); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		hardErrors++
	}
	if hardErrors > 0 {
		os.Exit(1)
	}
}

func table1(_ *harness.Harness, threads int) error {
	cfg := config.Shelf64(threads, true)
	fmt.Printf("Core            %d-thread SMT OOO @ 2.0 GHz\n", cfg.Threads)
	fmt.Printf("Width           %d-wide OOO with %d-wide fetch\n", cfg.Width, cfg.FetchWidth)
	fmt.Printf("Front end       %d cycles fetch-to-dispatch (ICOUNT)\n", cfg.FetchToDispatch)
	fmt.Printf("ROB             %d (or %d)\n", config.Base64(threads).ROB, config.Base128(threads).ROB)
	fmt.Printf("IQ, LQ, SQ      %d (or %d)\n", config.Base64(threads).IQ, config.Base128(threads).IQ)
	fmt.Printf("Shelf           %d\n", cfg.Shelf)
	fmt.Printf("Steering        %d-bit RCT entries, %d-load PLT\n", cfg.RCTBits, cfg.PLTLoads)
	fmt.Printf("L1I             %dKB, %d-way, %d-cycle\n", cfg.Mem.L1I.SizeBytes>>10, cfg.Mem.L1I.Ways, cfg.Mem.L1I.LatencyCycles)
	fmt.Printf("L1D             %dKB, %d-way, %d-cycle\n", cfg.Mem.L1D.SizeBytes>>10, cfg.Mem.L1D.Ways, cfg.Mem.L1D.LatencyCycles)
	fmt.Printf("L2              %dMB, %d-way, %d-cycle\n", cfg.Mem.L2.SizeBytes>>20, cfg.Mem.L2.Ways, cfg.Mem.L2.LatencyCycles)
	fmt.Printf("Memory          %d-cycle latency\n", cfg.Mem.MemLatencyCycles)
	return nil
}

func fig1(h *harness.Harness, _ int) error {
	rows, err := h.Fig1([]int{1, 2, 4, 8})
	if err != nil {
		return err
	}
	fmt.Println("in-sequence fraction vs SMT thread count (128-entry window):")
	for _, r := range rows {
		fmt.Printf("  %d thread(s): %5.1f%%   (paper: 1T~22%%, 2T~35%%, 4T~52%%, 8T~65%%)\n",
			r.Threads, 100*r.InSeqFrac)
	}
	return nil
}

func fig2(h *harness.Harness, _ int) error {
	res, err := h.Fig2()
	if err != nil {
		return err
	}
	fmt.Println("weighted CDF of consecutive series lengths (single-thread, 128-entry window):")
	fmt.Printf("  mean series length: in-seq %.1f, reordered %.1f (paper: 5-20 per group)\n",
		res.MeanInSeqLen, res.MeanReorderedLen)
	print := func(name string, cdf []metrics.CDFPoint) {
		fmt.Printf("  %-10s", name)
		for _, limit := range []int64{1, 2, 4, 8, 16, 32, 64, 128} {
			frac := 0.0
			for _, p := range cdf {
				if p.Length <= limit {
					frac = p.CumFrac
				}
			}
			fmt.Printf("  <=%-3d %4.0f%%", limit, 100*frac)
		}
		fmt.Println()
	}
	print("in-seq", res.InSeq)
	print("reordered", res.Reordered)
	return nil
}

func fig10(h *harness.Harness, threads int) error {
	rows, err := h.Fig10(threads)
	if err != nil {
		return err
	}
	cons := make([]float64, len(rows))
	opt := make([]float64, len(rows))
	dbl := make([]float64, len(rows))
	for i, r := range rows {
		cons[i] = r.Improvement(r.ShelfCons)
		opt[i] = r.Improvement(r.ShelfOpt)
		dbl[i] = r.Improvement(r.Base128)
	}
	sOpt, err := harness.Summarize(opt)
	if err != nil {
		return err
	}
	fmt.Printf("STP improvement over base64 (%d mixes):\n", len(rows))
	fmt.Printf("%-28s %10s %10s %10s\n", "mix", "shelf-cons", "shelf-opt", "base128")
	for _, idx := range []int{sOpt.MinMix, sOpt.MedianMix, sOpt.MaxMix} {
		fmt.Printf("%-28s %9.1f%% %9.1f%% %9.1f%%\n",
			rows[idx].Mix.Name(), 100*cons[idx], 100*opt[idx], 100*dbl[idx])
	}
	sCons, err := harness.Summarize(cons)
	if err != nil {
		return err
	}
	sDbl, err := harness.Summarize(dbl)
	if err != nil {
		return err
	}
	fmt.Printf("%-28s %9.1f%% %9.1f%% %9.1f%%\n", "geomean", 100*sCons.GeoMean, 100*sOpt.GeoMean, 100*sDbl.GeoMean)
	fmt.Printf("(paper: cons 8.6%% avg/15.1%% max, opt 11.5%% avg/19.2%% max; base128 is the upper bound)\n")
	return nil
}

func fig11(h *harness.Harness, threads int) error {
	rows10, err := h.Fig10(threads)
	if err != nil {
		return err
	}
	opt := make([]float64, len(rows10))
	for i, r := range rows10 {
		opt[i] = r.Improvement(r.ShelfOpt)
	}
	s, err := harness.Summarize(opt)
	if err != nil {
		return err
	}
	rows, err := h.Fig11(threads, []int{s.MinMix, s.MedianMix, s.MaxMix})
	if err != nil {
		return err
	}
	labels := []string{"min", "median", "max"}
	fmt.Println("per-thread in-sequence fraction (baseline OOO) for selected mixes:")
	var all []float64
	for i, r := range rows {
		fmt.Printf("  %-7s %-28s", labels[i], r.Mix.Name())
		for j, f := range r.Fractions {
			fmt.Printf("  %s=%4.1f%%", r.Workloads[j], 100*f)
			all = append(all, f)
		}
		fmt.Println()
	}
	fmt.Printf("  mean over selected mixes: %.1f%% (paper: ~50%%)\n", 100*metrics.Mean(all))
	return nil
}

func fig12(h *harness.Harness, threads int) error {
	rows, err := h.Fig12(threads, true)
	if err != nil {
		return err
	}
	var prac, orac []float64
	for _, r := range rows {
		prac = append(prac, r.Practical/r.Base64-1)
		orac = append(orac, r.Oracle/r.Base64-1)
	}
	sp, err := harness.Summarize(prac)
	if err != nil {
		return err
	}
	so, err := harness.Summarize(orac)
	if err != nil {
		return err
	}
	fmt.Printf("steering: STP improvement over base64 (%d mixes)\n", len(rows))
	fmt.Printf("  practical: geomean %5.1f%%  [min %5.1f%%, max %5.1f%%]\n", 100*sp.GeoMean, 100*sp.Min, 100*sp.Max)
	fmt.Printf("  oracle:    geomean %5.1f%%  [min %5.1f%%, max %5.1f%%]\n", 100*so.GeoMean, 100*so.Min, 100*so.Max)
	fmt.Println("  (paper: practical captures most of oracle's improvement)")
	return nil
}

func fig13(h *harness.Harness, threads int) error {
	rows, err := h.Fig13(threads)
	if err != nil {
		return err
	}
	var cons, opt, dbl []float64
	for _, r := range rows {
		// EDP improvement: reduction relative to base64.
		cons = append(cons, r.Base64/r.ShelfCons-1)
		opt = append(opt, r.Base64/r.ShelfOpt-1)
		dbl = append(dbl, r.Base64/r.Base128-1)
	}
	sc, err := harness.Summarize(cons)
	if err != nil {
		return err
	}
	so, err := harness.Summarize(opt)
	if err != nil {
		return err
	}
	sd, err := harness.Summarize(dbl)
	if err != nil {
		return err
	}
	fmt.Printf("EDP improvement over base64 (%d mixes):\n", len(rows))
	fmt.Printf("  shelf-cons: geomean %5.1f%%  max %5.1f%%\n", 100*sc.GeoMean, 100*sc.Max)
	fmt.Printf("  shelf-opt:  geomean %5.1f%%  max %5.1f%%\n", 100*so.GeoMean, 100*so.Max)
	fmt.Printf("  base128:    geomean %5.1f%%\n", 100*sd.GeoMean)
	fmt.Println("  (paper: cons 8.6%, opt 10.9% avg / 17.5% max; base128 4.9%)")
	return nil
}

func table2(_ *harness.Harness, threads int) error {
	sn, sw, bn, bw := harness.Table2(threads)
	fmt.Println("area increase over base64:")
	fmt.Printf("  %-22s %10s %10s\n", "", "base+shelf", "base128")
	fmt.Printf("  %-22s %9.1f%% %9.1f%%   (paper: 3.1%% / 9.7%%)\n", "excluding L1", 100*sn, 100*bn)
	fmt.Printf("  %-22s %9.1f%% %9.1f%%   (paper: 2.1%% / 6.6%%)\n", "including L1", 100*sw, 100*bw)
	return nil
}

func fig14(h *harness.Harness, _ int) error {
	rows, err := h.Fig14([]int{1, 2}, true)
	if err != nil {
		return err
	}
	fmt.Println("shelf with fewer threads (shelf64-opt vs base64):")
	for _, r := range rows {
		fmt.Printf("  %d thread(s): STP %+5.1f%%  EDP %+5.1f%%\n",
			r.Threads, 100*r.STPImprovement, 100*r.EDPImprovement)
	}
	fmt.Println("  (paper: ~0% at 1 thread — no loss — and a modest gain at 2)")
	return nil
}
