// Command shelflitmus runs the memory-model torture campaign: seeded
// litmus instances (MP, SB, LB, IRIW, CoRR, CoWW) simulated under the
// per-cycle invariant checker with the axiomatic memory-model checker
// attached, plus the fault-injection matrix that proves every deliberate
// state corruption surfaces as a typed invariant error rather than a
// wrong-value pass.
//
//	shelflitmus -n 1000 -seed 1 -preset shelf64-opt
//	shelflitmus -replay '{"pattern":0,"seed":12345,"insts":160,"max_pad":4}'
//
// A failing campaign writes the runner's failure manifest (every entry
// carrying a shrunken replay=<params> token) to -manifest and exits 1.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"shelfsim/internal/litmus"
)

func main() {
	var (
		n       = flag.Int("n", 1000, "number of litmus instances")
		seed    = flag.Uint64("seed", 1, "campaign seed")
		preset  = flag.String("preset", "shelf64-opt", "configuration preset under test")
		steer   = flag.String("steer", "", "override the preset's steering policy (all-iq, all-shelf, oracle, practical, coarse)")
		insts   = flag.Int64("insts", 160, "measured instructions per thread per instance")
		maxPad  = flag.Int("maxpad", 6, "max random filler ops between litmus events")
		faults  = flag.Int("fault-sample", 3, "instances crossed with each fault kind (0 skips the matrix)")
		workers = flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
		pattern = flag.String("pattern", "", "restrict to one pattern (mp, sb, lb, iriw, corr, coww)")
		mani    = flag.String("manifest", "", "write the failure manifest (JSON) to this file on failure")
		replay  = flag.String("replay", "", "re-run one instance from its replay Params JSON and exit")
	)
	flag.Parse()

	if *replay != "" {
		os.Exit(runReplay(*replay, *preset))
	}

	cc := litmus.CampaignConfig{
		Seed: *seed, Instances: *n, Preset: *preset, Steer: *steer, Insts: *insts,
		MaxPad: *maxPad, FaultSample: *faults, SkipFaults: *faults == 0,
		Workers: *workers,
	}
	if *pattern != "" {
		p, err := patternByName(*pattern)
		if err != nil {
			fmt.Fprintf(os.Stderr, "shelflitmus: %v\n", err)
			os.Exit(2)
		}
		cc.Patterns = []litmus.Pattern{p}
	}

	rep := litmus.RunCampaign(context.Background(), cc)

	detected := 0
	for _, cell := range rep.FaultCells {
		if cell.Detected {
			detected++
		}
	}
	fmt.Printf("shelflitmus: %d instances on %s: %d failure(s); fault matrix %d/%d detected\n",
		rep.Instances, *preset, len(rep.Failures), detected, len(rep.FaultCells))
	cov := rep.Coverage
	fmt.Printf("  coverage: %d loads (%d store-fwd, %d load-fwd), %d stores (%d coalesced), %d commits, %d squashes\n",
		cov.Loads, cov.LoadFwdStore, cov.LoadFwdLoad, cov.Stores, cov.Coalesced, cov.Commits, cov.Squashes)
	for _, cell := range rep.FaultCells {
		status := "detected"
		if !cell.Detected {
			status = "MISSED"
		}
		fmt.Printf("  fault %-11s on %-12s cycle %-4d %s (%s)\n",
			cell.Kind, cell.Preset, cell.InjectCycle, status, cell.Check)
	}
	if rep.OK() {
		return
	}

	m := rep.Manifest()
	if *mani != "" {
		f, err := os.Create(*mani)
		if err == nil {
			err = m.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "shelflitmus: writing manifest: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "shelflitmus: failure manifest written to %s\n", *mani)
		}
	}
	for _, f := range m.Failures {
		fmt.Fprintf(os.Stderr, "  FAIL %s\n", f.Error())
	}
	os.Exit(1)
}

// runReplay re-runs one instance from its manifest replay token.
func runReplay(paramsJSON, preset string) int {
	var p litmus.Params
	if err := json.Unmarshal([]byte(paramsJSON), &p); err != nil {
		fmt.Fprintf(os.Stderr, "shelflitmus: bad -replay params: %v\n", err)
		return 2
	}
	cc := litmus.CampaignConfig{Preset: preset}
	rep := litmus.ReplayInstance(context.Background(), p, cc)
	if len(rep.Failures) == 0 {
		fmt.Printf("shelflitmus: replay %s: clean\n", p)
		return 0
	}
	for _, f := range rep.Failures {
		fmt.Fprintf(os.Stderr, "  FAIL %s\n", f.Error())
	}
	return 1
}

// patternByName maps a CLI name to a Pattern.
func patternByName(name string) (litmus.Pattern, error) {
	for p := litmus.Pattern(0); p < litmus.NumPatterns; p++ {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown pattern %q", name)
}
