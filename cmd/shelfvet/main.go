// Shelfvet is the simulator's static-analysis gate: a vet-compatible
// multichecker of the internal/analysis/checkers analyzers that enforce
// the repo's determinism and observability invariants at compile review
// time instead of after a million-cycle sweep diverges.
//
// Run it standalone:
//
//	go run ./cmd/shelfvet ./...
//
// or as a vet tool, which also covers test variants of each package:
//
//	go build -o /tmp/shelfvet ./cmd/shelfvet
//	go vet -vettool=/tmp/shelfvet ./...
package main

import (
	"os"

	"shelfsim/internal/analysis"
	"shelfsim/internal/analysis/checkers"
)

func main() {
	os.Exit(analysis.Main(checkers.All(), os.Args[1:]))
}
