// Command shelftrace records workload kernels to trace files and replays
// them through the simulator. Frozen traces pin workloads for regression
// comparisons independent of future kernel changes.
//
//	shelftrace record -kernel stencil -n 100000 -o stencil.trc
//	shelftrace info stencil.trc
//	shelftrace run -config shelf64-opt -insts 20000 a.trc b.trc c.trc d.trc
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"shelfsim"
	"shelfsim/internal/obs"
	"shelfsim/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "run":
		runTraces(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: shelftrace record|info|run ...")
	os.Exit(2)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	kernel := fs.String("kernel", "", "kernel name to record")
	n := fs.Int64("n", 100_000, "instructions to record")
	out := fs.String("o", "", "output trace file")
	seed := fs.Uint64("seed", 1, "stream seed")
	base := fs.Uint64("base", 1<<32, "data region base address")
	fs.Parse(args)
	if *kernel == "" || *out == "" {
		fatalf("record needs -kernel and -o")
	}
	k, err := shelfsim.KernelByName(*kernel)
	if err != nil {
		fatalf("%v", err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	count, err := trace.Record(f, k.NewStream(*base, *seed, *n), -1)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("recorded %d instructions of %s to %s\n", count, *kernel, *out)
}

func info(args []string) {
	if len(args) != 1 {
		fatalf("info needs one trace file")
	}
	r := openTrace(args[0])
	var loads, stores, branches int
	var in shelfsim.Inst
	for r.Next(&in) {
		switch {
		case in.Op.String() == "load":
			loads++
		case in.Op.String() == "store":
			stores++
		case in.Op.String() == "branch":
			branches++
		}
	}
	total := r.Len()
	fmt.Printf("%s: %q, %d instructions (%.1f%% loads, %.1f%% stores, %.1f%% branches)\n",
		args[0], r.Name(), total,
		pct(loads, total), pct(stores, total), pct(branches, total))
}

func runTraces(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	configName := fs.String("config", "shelf64-opt", "configuration preset: base64, base128, shelf64-cons, shelf64-opt, coarse64")
	insts := fs.Int64("insts", 10_000, "measured instructions per thread")
	obsOut := fs.String("obs", "", "collect per-core telemetry and write it to this file (JSON, or CSV with a .csv extension)")
	cpuProf := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProf := fs.String("memprofile", "", "write a heap profile to this file on exit")
	fs.Parse(args)
	paths := fs.Args()
	if len(paths) == 0 {
		fatalf("run needs trace files")
	}

	stopProfiles, err := obs.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fatalf("%v", err)
	}

	streams := make([]shelfsim.Stream, len(paths))
	for i, p := range paths {
		streams[i] = openTrace(p)
	}
	// Traces ride the library-only Streams path of the request API: the
	// preset, overrides and validation are shared with every other entry
	// point, only the workload cannot travel over the wire.
	req := shelfsim.Request{Preset: *configName, Streams: streams, Insts: *insts}
	if *obsOut != "" {
		telemetry := true
		req.Overrides = &shelfsim.Overrides{Telemetry: &telemetry}
	}
	res, err := shelfsim.Run(context.Background(), req)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("config %s: %d cycles, IPC %.3f\n", res.Config, res.Cycles, res.Stats.IPC())
	for i, t := range res.Threads {
		fmt.Printf("  thread %d (%s): CPI %.3f, %.1f%% in-seq, %.1f%% shelved\n",
			i, t.Workload, t.CPI, 100*t.InSeqFraction, 100*t.ShelfFraction)
	}
	if *obsOut != "" {
		if err := obs.WriteFile(*obsOut, res.Obs); err != nil {
			fatalf("writing telemetry: %v", err)
		}
	}
	if err := stopProfiles(); err != nil {
		fatalf("%v", err)
	}
}

func openTrace(path string) *trace.Reader {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		fatalf("%s: %v", path, err)
	}
	return r
}

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "shelftrace: "+format+"\n", args...)
	os.Exit(1)
}
