package shelfsim

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

var updateAsmGolden = flag.Bool("update-asm-golden", false, "rewrite testdata/asm/golden.json from current results")

// asmGoldenRequest pins the measurement every golden fingerprint is taken
// under: single-thread shelf64-opt with a fixed window. Changing this
// invalidates every golden (regenerate with -update-asm-golden).
func asmGoldenRequest(src string) Request {
	return Request{Preset: "shelf64-opt", Threads: 1, Programs: []string{src}, Insts: 20_000}
}

// asmGolden is one program's pinned identity: the assembler-level
// schedule fingerprint (catches front-end changes) and the simulated
// result fingerprint (catches timing-model changes).
type asmGolden struct {
	ScheduleFingerprint string `json:"schedule_fingerprint"`
	ResultFingerprint   string `json:"result_fingerprint"`
	CacheKey            string `json:"cache_key"`
}

// TestAsmGoldenFingerprints simulates every checked-in program and diffs
// its fingerprints against testdata/asm/golden.json. These are the
// program workloads' determinism contract: any change to the assembler's
// lowering, the unroll semantics, or the core's timing shows up as a
// fingerprint diff here before it silently lands in cached results.
func TestAsmGoldenFingerprints(t *testing.T) {
	dir := filepath.Join("testdata", "asm")
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]asmGolden{}
	var names []string
	for _, e := range ents {
		if filepath.Ext(e.Name()) != ".s" {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatal("no programs in testdata/asm")
	}
	for _, name := range names {
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		p, err := Assemble(string(src), AsmOptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		req := asmGoldenRequest(string(src))
		rep, err := RunReport(context.Background(), req)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got[name] = asmGolden{
			ScheduleFingerprint: p.Fingerprint(),
			ResultFingerprint:   rep.ResultFingerprint,
			CacheKey:            rep.CacheKey,
		}
	}

	goldenPath := filepath.Join(dir, "golden.json")
	if *updateAsmGolden {
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d entries", goldenPath, len(got))
		return
	}

	blob, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update-asm-golden to generate)", err)
	}
	var want map[string]asmGolden
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	for name, g := range got {
		w, ok := want[name]
		if !ok {
			t.Errorf("%s: no golden entry (run with -update-asm-golden)", name)
			continue
		}
		if g != w {
			t.Errorf("%s: fingerprints diverged from golden:\n got %+v\nwant %+v", name, g, w)
		}
	}
	for name := range want {
		if _, ok := got[name]; !ok {
			t.Errorf("golden entry %s has no program file", name)
		}
	}
}
